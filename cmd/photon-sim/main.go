// photon-sim runs a Photon global illumination simulation and writes the
// answer file. All four engines are driven through the one internal
// engine.Engine interface, with live progress reporting.
//
// Usage:
//
//	photon-sim -scene cornell-box -photons 1000000 -engine shared -workers 8 -o cornell.pbf
//	photon-sim -scene gen:office/seed=42/rooms=2/density=0.7 -photons 500000 -o office.pbf
//
// -scene accepts built-in names and generator specs
// (gen:<family>/seed=N/param=value/...); generated scenes are
// deterministic, so the answer file's stored spec rebuilds the exact
// geometry at view time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	photon "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-sim: ")

	var (
		sceneName = flag.String("scene", "quickstart",
			"scene: "+strings.Join(photon.SceneNames(), ", ")+
				", or a generator spec gen:<family>/seed=N/... (families: "+
				strings.Join(photon.GenFamilies(), ", ")+")")
		photons     = flag.Int64("photons", 200000, "photons to emit")
		engineName  = flag.String("engine", "serial", "engine: serial, shared, distributed, geo")
		workers     = flag.Int("workers", 4, "workers (shared) or ranks (distributed, geo)")
		batch       = flag.Int("batch", 0, "photons per exchange round (distributed, geo; 0 = engine default)")
		seed        = flag.Int64("seed", 1, "random seed")
		quiet       = flag.Bool("q", false, "suppress the progress line")
		out         = flag.String("o", "answer.pbf", "output answer file")
		metricsJSON = flag.String("metrics-json", "", "write the run's span/metric report as JSON to this file (- for stdout)")
	)
	flag.Parse()

	scene, err := photon.SceneByName(*sceneName)
	if err != nil {
		log.Fatal(err)
	}
	if *engineName == "dist" { // long-standing CLI alias
		*engineName = "distributed"
	}
	eng, err := engine.ByName(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scene %s: %d defining polygons, %d luminaires\n",
		scene.Name, scene.DefiningPolygons(), len(scene.Geom.Luminaires))
	fmt.Printf("tracing %d photons on the %s engine (%d workers)...\n", *photons, eng.Name(), *workers)

	coreCfg := core.DefaultConfig(*photons)
	coreCfg.Seed = *seed
	cfg := engine.Config{
		Core:      coreCfg,
		Workers:   *workers,
		BatchSize: *batch,
	}
	if *metricsJSON != "" {
		cfg.Obs = obs.NewRun()
	}
	if !*quiet {
		cfg.Progress = func(done, total int64) {
			fmt.Printf("\r  traced %3d%% (%d/%d)", done*100/total, done, total)
			if done == total {
				fmt.Println()
			}
		}
	}

	start := time.Now()
	res, err := eng.Run(scene, cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	sol := photon.SolutionFromResult(res.Result)

	st := res.Stats
	fmt.Printf("done in %v (%.0f photons/sec)\n", elapsed.Round(time.Millisecond),
		float64(st.PhotonsEmitted)/elapsed.Seconds())
	fmt.Printf("  reflections: %d  (mean path %.2f)\n", st.Reflections, st.MeanPathLength())
	fmt.Printf("  bin splits:  %d  (%d view-dependent bins, %.2f MB)\n",
		st.BinSplits, sol.Leaves(), float64(sol.MemoryBytes())/1e6)
	if d := res.Dist; d != nil {
		fmt.Printf("  distribution: %d messages, %.2f MB traffic", d.Traffic.Messages,
			float64(d.Traffic.Bytes)/1e6)
		if d.Forwards > 0 {
			fmt.Printf(", %d inter-region photon forwards", d.Forwards)
		}
		fmt.Println()
	}

	if err := sol.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer written to %s (%.2f MB)\n", *out, float64(fi.Size())/1e6)

	if *metricsJSON != "" {
		if err := writeMetricsJSON(*metricsJSON, cfg.Obs.Report()); err != nil {
			log.Fatal(err)
		}
	}
}

// writeMetricsJSON dumps the run report to path, or stdout for "-".
func writeMetricsJSON(path string, rep obs.Report) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
