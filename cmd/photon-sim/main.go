// photon-sim runs a Photon global illumination simulation and writes the
// answer file.
//
// Usage:
//
//	photon-sim -scene cornell-box -photons 1000000 -engine shared -workers 8 -o cornell.pbf
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	photon "repro"
	"repro/internal/dist"
	"repro/internal/scenes"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("photon-sim: ")

	var (
		sceneName = flag.String("scene", "quickstart", "scene: "+strings.Join(photon.SceneNames(), ", "))
		photons   = flag.Int64("photons", 200000, "photons to emit")
		engine    = flag.String("engine", "serial", "engine: serial, shared, distributed, geo")
		workers   = flag.Int("workers", 4, "workers (shared) or ranks (distributed)")
		batch     = flag.Int("batch", 500, "photons per rank per batch (distributed)")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("o", "answer.pbf", "output answer file")
	)
	flag.Parse()

	scene, err := photon.SceneByName(*sceneName)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scene %s: %d defining polygons, %d luminaires\n",
		scene.Name, scene.DefiningPolygons(), len(scene.Geom.Luminaires))
	fmt.Printf("tracing %d photons on the %s engine (%d workers)...\n", *photons, *engine, *workers)

	start := time.Now()
	var sol *photon.Solution
	switch *engine {
	case "serial":
		sol, err = photon.Simulate(scene, photon.Config{
			Photons: *photons, Seed: *seed, Engine: photon.EngineSerial})
	case "shared":
		sol, err = photon.Simulate(scene, photon.Config{
			Photons: *photons, Seed: *seed, Engine: photon.EngineShared, Workers: *workers})
	case "distributed", "dist":
		sol, err = photon.Simulate(scene, photon.Config{
			Photons: *photons, Seed: *seed, Engine: photon.EngineDistributed,
			Workers: *workers, BatchSize: *batch})
	case "geo":
		sol, err = runGeo(scene, *photons, *seed, *workers)
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	st := sol.Stats()
	fmt.Printf("done in %v (%.0f photons/sec)\n", elapsed.Round(time.Millisecond),
		float64(st.PhotonsEmitted)/elapsed.Seconds())
	fmt.Printf("  reflections: %d  (mean path %.2f)\n", st.Reflections, st.MeanPathLength())
	fmt.Printf("  bin splits:  %d  (%d view-dependent bins, %.2f MB)\n",
		st.BinSplits, sol.Leaves(), float64(sol.MemoryBytes())/1e6)

	if err := sol.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer written to %s (%.2f MB)\n", *out, float64(fi.Size())/1e6)
}

// runGeo drives the geometry-distributed (octree-region ownership) engine —
// the dissertation's chapter-6 "Massive Parallelism" design.
func runGeo(scene *scenes.Scene, photons, seed int64, ranks int) (*photon.Solution, error) {
	cfg := dist.DefaultGeoConfig(photons, ranks)
	cfg.Core.Seed = seed
	res, err := dist.GeoRun(scene, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("  geometry-distributed: %d inter-region photon forwards, %d messages\n",
		res.Forwards, res.Traffic.Messages)
	return photon.SolutionFromResult(res.Result), nil
}
