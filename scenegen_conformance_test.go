package photon

// The differential-conformance harness: the three fixed-scene matrices
// (photon_conformance_test.go, render_conformance_test.go, the octree
// property tests) generalized into properties that hold over the UNBOUNDED
// scene space internal/scenegen manufactures. For every generated scene:
//
//   - serial, shared (any workers) and distributed (any ranks) produce
//     bit-identical statistics and bit-identical bin forests, and geo
//     matches every trajectory counter;
//   - the octree agrees with the O(n) brute-force intersector on sampled
//     rays;
//   - the tile renderer is byte-identical at any worker count;
//   - generation itself is deterministic, pinned cross-machine and
//     cross-version by a committed golden corpus of forest fingerprints
//     (regenerate with `go test -run SceneGenGolden -update .`).
//
// The scene list spans every generator family — occlusion-dense room
// grids, collimated light arrays, mirror halls, and the adversarial
// degenerate layouts — precisely the geometry variety the fixed rooms
// never exercise.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/sampler"
	"repro/internal/scenegen"
	"repro/internal/vecmath"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/scenegen_golden.json")

// genConformanceSpecs is the differential harness's scene set: one scene
// per generator family (canonical specs). Every test in this file sweeps
// it, so adding a family here buys conformance evidence across all four
// engines, the octree, and the renderer at once.
var genConformanceSpecs = []string{
	"gen:office/seed=11/rooms=2/density=0.7",
	"gen:lights/seed=3/nx=3/ny=2/collimation=0.05",
	"gen:hall/seed=5/length=12/mirrors=8",
	"gen:adversarial/seed=9/slivers=12/stacks=6/spans=4",
	"gen:grid/seed=2/patches=400",
}

func genPhotons(t *testing.T) int64 {
	t.Helper()
	if testing.Short() {
		return 1200
	}
	return 2500
}

// TestDifferentialEngineConformance is the cross-engine matrix over
// generated scenes: for every family, serial/shared/distributed must agree
// to the bit (stats AND forest fingerprint) at several worker and rank
// counts, and geo must reproduce every trajectory counter. The fixed-scene
// matrix shows the engines agree on four rooms; this shows they agree on a
// scene space.
func TestDifferentialEngineConformance(t *testing.T) {
	photons := genPhotons(t)
	for _, spec := range genConformanceSpecs {
		t.Run(spec, func(t *testing.T) {
			sc, err := SceneByName(spec)
			if err != nil {
				t.Fatal(err)
			}
			refSum1, refStats1 := runSummary(t, sc, Config{
				Photons: photons, Engine: EngineSerial, Sections: 1})
			refSum4, refStats4 := runSummary(t, sc, Config{
				Photons: photons, Engine: EngineSerial, Sections: 4})

			for _, workers := range []int{1, 2, 8} {
				sum, stats := runSummary(t, sc, Config{
					Photons: photons, Engine: EngineShared, Workers: workers, Sections: 1})
				if stats != refStats1 || sum != refSum1 {
					t.Errorf("shared-w%d diverges from serial:\nserial: %+v %+v\nshared: %+v %+v",
						workers, refStats1, refSum1, stats, sum)
				}
			}
			for _, ranks := range []int{1, 2, 4} {
				sum, stats := runSummary(t, sc, Config{
					Photons: photons, Engine: EngineDistributed, Workers: ranks, Sections: 4})
				if stats != refStats4 || sum != refSum4 {
					t.Errorf("distributed-r%d diverges from serial:\nserial: %+v %+v\ndist:   %+v %+v",
						ranks, refStats4, refSum4, stats, sum)
				}
			}
			// Geo: identical trajectories (all counters except the
			// forest-evolution-dependent BinSplits), conserved tallies.
			for _, ranks := range []int{2, 4} {
				sum, stats := runSummary(t, sc, Config{
					Photons: photons, Engine: EngineGeo, Workers: ranks})
				traj, refTraj := stats, refStats1
				traj.BinSplits, refTraj.BinSplits = 0, 0
				if traj != refTraj {
					t.Errorf("geo-r%d trajectories diverge from serial:\n%+v\n%+v", ranks, refTraj, traj)
				}
				if want := stats.PhotonsEmitted + stats.Reflections; sum.Tallies != want {
					t.Errorf("geo-r%d forest holds %d tallies, want %d", ranks, sum.Tallies, want)
				}
			}
		})
	}
}

// TestDifferentialOctreeAgreesWithBrute: on every generated scene — most
// importantly the adversarial family's slivers, coplanar stacks and
// octant-spanning sheets — the octree's ordered traversal must return the
// same answer as the O(n) reference on uniform interior rays, axis-parallel
// rays, and rays originating exactly on patch surfaces.
func TestDifferentialOctreeAgreesWithBrute(t *testing.T) {
	rayCount := 400
	if testing.Short() {
		rayCount = 120
	}
	axes := [6]vecmath.Vec3{
		vecmath.V(1, 0, 0), vecmath.V(-1, 0, 0),
		vecmath.V(0, 1, 0), vecmath.V(0, -1, 0),
		vecmath.V(0, 0, 1), vecmath.V(0, 0, -1),
	}
	for _, spec := range genConformanceSpecs {
		t.Run(spec, func(t *testing.T) {
			sc, err := SceneByName(spec)
			if err != nil {
				t.Fatal(err)
			}
			g := sc.Geom
			b := g.Bounds()
			size := b.Size()
			r := rng.New(31)
			for i := 0; i < rayCount; i++ {
				origin := vecmath.V(
					b.Min.X+size.X*r.Float64(),
					b.Min.Y+size.Y*r.Float64(),
					b.Min.Z+size.Z*r.Float64(),
				)
				checkGenAgainstBrute(t, g, vecmath.Ray{Origin: origin, Dir: sampler.UniformSphere(r)}, "uniform")
				checkGenAgainstBrute(t, g, vecmath.Ray{Origin: origin, Dir: axes[i%6]}, "axis-parallel")
				p := &g.Patches[i%len(g.Patches)]
				onPatch := p.Point(r.Float64(), r.Float64())
				checkGenAgainstBrute(t, g, vecmath.Ray{Origin: onPatch, Dir: sampler.UniformSphere(r)}, "on-patch")
			}
		})
	}
}

// checkGenAgainstBrute mirrors the geom package's property-test oracle:
// found-ness and hit distance must match exactly enough that physics cannot
// diverge; when two patches are hit at identical T (shared edges, and the
// adversarial family's exactly coplanar stacks), either patch is correct.
func checkGenAgainstBrute(t *testing.T, g *geom.Scene, ray vecmath.Ray, label string) {
	t.Helper()
	var ho, hb geom.Hit
	fo := g.Intersect(ray, &ho)
	fb := g.IntersectBrute(ray, &hb)
	if fo != fb {
		t.Fatalf("%s ray %+v: octree found=%v brute found=%v", label, ray, fo, fb)
	}
	if !fo {
		return
	}
	if math.Abs(ho.T-hb.T) > 1e-9 {
		t.Fatalf("%s ray %+v: octree t=%v brute t=%v", label, ray, ho.T, hb.T)
	}
	if ho.Patch.ID != hb.Patch.ID && ho.T != hb.T {
		t.Fatalf("%s ray %+v: octree patch %d t=%v, brute patch %d t=%v",
			label, ray, ho.Patch.ID, ho.T, hb.Patch.ID, hb.T)
	}
}

// genCamera frames a generated scene from inside its geometry: eye between
// the bounds center and the min corner, looking at the center.
func genCamera(sc *Scene) Camera {
	b := sc.Geom.Bounds()
	c := b.Center()
	eye := c.Add(b.Min.Sub(c).Scale(0.55))
	return Camera{Eye: eye, LookAt: c, Up: V(0, 0, 1), FovY: 70, Width: 64, Height: 48}
}

// TestDifferentialRenderConformance: the tile renderer's byte-identity
// across worker counts and schedules, over generated scenes. Combined with
// the engine matrix above this closes the pipeline over the scene space:
// same spec + same Config ⇒ same bytes on screen.
func TestDifferentialRenderConformance(t *testing.T) {
	for _, spec := range genConformanceSpecs {
		t.Run(spec, func(t *testing.T) {
			sc, err := SceneByName(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(sc, core.DefaultConfig(genPhotons(t)))
			if err != nil {
				t.Fatal(err)
			}
			cam := genCamera(sc)
			for _, samples := range []int{1, 2} {
				ref := renderPNG(t, sc, res, cam, RenderOptions{Workers: 1, Samples: samples})
				for _, workers := range []int{3, 8} {
					got := renderPNG(t, sc, res, cam, RenderOptions{Workers: workers, Samples: samples})
					if !bytes.Equal(ref, got) {
						t.Errorf("samples=%d workers=%d: render diverges from the serial pixel loop",
							samples, workers)
					}
				}
			}
		})
	}
}

// TestGeneratedSceneDeterminism: the same spec builds the bit-identical
// scene every time through the full public path, and spec parameter order
// is immaterial — the determinism contract the golden corpus and the
// answer-file round trip both stand on.
func TestGeneratedSceneDeterminism(t *testing.T) {
	for _, spec := range genConformanceSpecs {
		a, err := SceneByName(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SceneByName(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Geom.Patches) != len(b.Geom.Patches) {
			t.Fatalf("%s: patch counts differ between builds", spec)
		}
		for i := range a.Geom.Patches {
			pa, pb := &a.Geom.Patches[i], &b.Geom.Patches[i]
			if pa.Origin != pb.Origin || pa.EdgeS != pb.EdgeS || pa.EdgeT != pb.EdgeT ||
				pa.Emission != pb.Emission || pa.Collimation != pb.Collimation ||
				pa.Material != pb.Material {
				t.Fatalf("%s: patch %d differs between builds", spec, i)
			}
		}
	}
	// Parameter order is immaterial: permuted spec, same canonical scene.
	a, err := SceneByName("gen:office/seed=11/rooms=2/density=0.7")
	if err != nil {
		t.Fatal(err)
	}
	b, err := SceneByName("gen:office/density=0.7/seed=11/rooms=2")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name {
		t.Fatalf("permuted spec canonicalized differently: %q vs %q", a.Name, b.Name)
	}
}

// TestGeneratedAnswerRoundTrip: simulate a generated scene, save the
// answer, reload it, and rebuild the geometry from the stored canonical
// spec — including a sectioned (distributed-engine) answer, whose forest
// holds Sections² trees per polygon: Scene() must compare patch counts,
// not tree counts.
func TestGeneratedAnswerRoundTrip(t *testing.T) {
	const spec = "gen:office/seed=11/rooms=2/density=0.7"
	sc, err := SceneByName(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Photons: 1500, Engine: EngineSerial},
		{Photons: 1500, Engine: EngineDistributed, Workers: 2, Sections: 4},
	} {
		sol, err := Simulate(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "gen.pbf")
		if err := sol.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.SceneName() != spec {
			t.Fatalf("%v: loaded scene name %q, want %q", cfg.Engine, loaded.SceneName(), spec)
		}
		rebuilt, err := loaded.Scene()
		if err != nil {
			t.Fatalf("%v: rebuilding generated scene from answer: %v", cfg.Engine, err)
		}
		if rebuilt.DefiningPolygons() != sc.DefiningPolygons() {
			t.Fatalf("%v: rebuilt scene has %d polygons, want %d",
				cfg.Engine, rebuilt.DefiningPolygons(), sc.DefiningPolygons())
		}
		if got, want := loaded.Summary(), sol.Summary(); got != want {
			t.Fatalf("%v: answer changed across save/load:\n%+v\n%+v", cfg.Engine, want, got)
		}
	}
}

// --- Golden fingerprint corpus -------------------------------------------

// goldenEntry pins one canonical generated scene: the geometry fingerprint
// (generator drift detector) and the serial forest summary at a fixed
// photon count (light-transport drift detector). Hex strings keep the
// uint64s JSON-safe.
type goldenEntry struct {
	Spec        string `json:"spec"`
	Photons     int64  `json:"photons"`
	Patches     int    `json:"patches"`
	GeomFP      string `json:"geom_fingerprint"`
	ForestFP    string `json:"forest_fingerprint"`
	Leaves      int    `json:"leaves"`
	Tallies     int64  `json:"tallies"`
	Reflections int64  `json:"reflections"`
}

// goldenSpecs are the ~8 canonical scenes the corpus pins (fixed photon
// count, independent of -short: the golden file must mean the same thing
// in every test mode).
var goldenSpecs = []string{
	"gen:office/seed=42/rooms=2/density=0.7",
	"gen:office/seed=1/rooms=3/density=0.2",
	"gen:lights/seed=3/nx=3/ny=2/collimation=0.05",
	"gen:lights/seed=8/nx=2/ny=2/collimation=1",
	"gen:hall/seed=5/length=12/mirrors=8",
	"gen:hall/seed=21/length=24/mirrors=16",
	"gen:adversarial/seed=9/slivers=12/stacks=6/spans=4",
	"gen:grid/seed=2/patches=500",
}

const goldenPath = "testdata/scenegen_golden.json"
const goldenPhotons = 2000

func computeGolden(t *testing.T, specStr string) goldenEntry {
	t.Helper()
	spec, err := scenegen.Parse(specStr)
	if err != nil {
		t.Fatal(err)
	}
	built, err := scenegen.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := SceneByName(specStr)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Simulate(sc, Config{Photons: goldenPhotons, Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	sum := sol.Summary()
	return goldenEntry{
		Spec:        specStr,
		Photons:     goldenPhotons,
		Patches:     sc.DefiningPolygons(),
		GeomFP:      fmt.Sprintf("%016x", built.Fingerprint()),
		ForestFP:    fmt.Sprintf("%016x", sum.Fingerprint),
		Leaves:      sum.Leaves,
		Tallies:     sum.Tallies,
		Reflections: sol.Stats().Reflections,
	}
}

// TestSceneGenGoldenCorpus compares every canonical scene against the
// committed corpus — the cross-machine, cross-version drift alarm for both
// the generator and the physics. On intended changes regenerate with
//
//	go test -run TestSceneGenGoldenCorpus -update .
//
// and commit the diff; the diff itself documents whether geometry, light
// transport, or both moved.
func TestSceneGenGoldenCorpus(t *testing.T) {
	if *updateGolden {
		entries := make([]goldenEntry, 0, len(goldenSpecs))
		for _, spec := range goldenSpecs {
			entries = append(entries, computeGolden(t, spec))
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(entries), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden corpus (regenerate with -update): %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]goldenEntry, len(entries))
	for _, e := range entries {
		byName[e.Spec] = e
	}
	for _, spec := range goldenSpecs {
		want, ok := byName[spec]
		if !ok {
			t.Errorf("golden corpus missing %q (regenerate with -update)", spec)
			continue
		}
		got := computeGolden(t, spec)
		if got != want {
			t.Errorf("%s drifted from golden corpus:\nwant %+v\ngot  %+v", spec, want, got)
		}
	}
	if len(entries) != len(goldenSpecs) {
		t.Errorf("golden corpus has %d entries, harness pins %d (regenerate with -update)",
			len(entries), len(goldenSpecs))
	}
}
