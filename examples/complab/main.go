// Computer Laboratory: the paper's large-scene distributed run. The
// ~2000-polygon lab is simulated on the distributed engine (in-process
// message-passing ranks standing in for MPI), demonstrating the
// load-balancing pre-phase, the partitioned bin forest, and the batched
// all-to-all tally exchange of Figure 5.3 — with per-rank work statistics
// like Table 5.2's.
//
// Unlike the other examples it drives the internal engine interface
// directly, because the per-rank telemetry it prints is engine-level.
package main

import (
	"flag"
	"fmt"
	"log"

	photon "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scenes"
)

func main() {
	log.SetFlags(0)
	photons := flag.Int64("photons", 400000, "photons to emit")
	flag.Parse()

	scene, err := scenes.ComputerLab()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Computer Laboratory: %d defining polygons, %d ceiling lights\n",
		scene.DefiningPolygons(), len(scene.Geom.Luminaires))

	const ranks = 8
	coreCfg := core.DefaultConfig(*photons)
	coreCfg.Seed = 1 // explicit: the per-rank table below is reproducible
	sol, err := engine.Distributed.Run(scene, engine.Config{
		Core:    coreCfg,
		Workers: ranks,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := sol.Dist

	fmt.Printf("\nper-rank work (Best-Fit bin-packed ownership, %d forest sections):\n",
		len(res.Owners))
	for _, rs := range res.PerRank {
		fmt.Printf("  rank %d: traced %6d photons, applied %7d tallies, forwarded %7d, %d batches\n",
			rs.Rank, rs.PhotonsTraced, rs.TalliesApplied, rs.TalliesForwarded, rs.Batches)
	}
	fmt.Printf("message traffic: %d messages, %.2f MB\n",
		res.Traffic.Messages, float64(res.Traffic.Bytes)/1e6)
	fmt.Printf("load balance max/mean: %.3f\n", res.Balance.Imbalance())

	// The assembled forest is a normal answer: render it.
	cam := photon.Camera{
		Eye:    photon.V(14.5, 1.0, 2.2),
		LookAt: photon.V(6, 8, 0.8),
		Up:     photon.V(0, 0, 1),
		FovY:   70, Width: 400, Height: 300,
	}
	img, err := photon.RenderOpts(scene, photon.SolutionFromResult(sol.Result), cam,
		photon.RenderOptions{Workers: 4, Samples: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := photon.WritePNGFile("complab.png", img); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote complab.png")
}
