// Harpsichord Practice Room: the paper's sunlight demonstration
// (Figure 4.7). The skylights carry two kinds of luminaire: a collimated
// "sun" panel (quarter-degree cone, the paper's 0.005 circle scaling) and a
// diffuse "sky" panel. The collimated sun produces shadows that sharpen as
// the occluder approaches the floor — the physically-correct behaviour most
// renderers' point-light suns cannot produce.
//
// The example quantifies the effect by probing the floor across the shadow
// of the harpsichord body (occluder ~0.75 m above floor: fuzzy edge) and
// across the skylight frame's shadow (occluder 3.5 m up: fuzzier still),
// then renders the room.
package main

import (
	"flag"
	"fmt"
	"log"

	photon "repro"
)

func main() {
	log.SetFlags(0)
	photons := flag.Int64("photons", 1200000, "photons to emit")
	flag.Parse()

	scene, err := photon.SceneByName("harpsichord-room")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Harpsichord Practice Room: %d defining polygons, %d luminaires (sun + sky per skylight)\n",
		scene.DefiningPolygons(), len(scene.Geom.Luminaires))

	sol, err := photon.Simulate(scene, photon.Config{
		Photons: *photons,
		Seed:    1, // explicit: the shadow profile below is reproducible
		Engine:  photon.EngineShared,
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sol.Stats()
	fmt.Printf("traced %d photons (%d reflections)\n", st.PhotonsEmitted, st.Reflections)

	// Probe the floor's stored irradiance (straight-up radiance) along a
	// line crossing under the harpsichord: the transition from lit to
	// shadowed floor is gradual, not a step.
	fmt.Println("\nfloor radiance crossing the harpsichord shadow (y = 0.9..2.3 at x = 4.2):")
	floorPatch := 0
	for i := 0; i <= 14; i++ {
		y := 0.9 + float64(i)*0.1
		// Floor patch params: the floor spans 8 x 6 m from the origin.
		s := 4.2 / 8.0
		tt := y / 6.0
		rad, err := sol.Radiance(scene, floorPatch, s, tt, 0.05, 1)
		if err != nil {
			log.Fatal(err)
		}
		bar := ""
		for j := 0; j < int(rad.Luminance()*400) && j < 60; j++ {
			bar += "#"
		}
		fmt.Printf("  y=%.1f  L=%8.4f %s\n", y, rad.Luminance(), bar)
	}

	cam := photon.Camera{
		Eye:    photon.V(6.8, 0.7, 1.9),
		LookAt: photon.V(3.2, 3.6, 1.0),
		Up:     photon.V(0, 0, 1),
		FovY:   65, Width: 400, Height: 300,
	}
	img, err := photon.RenderOpts(scene, sol, cam, photon.RenderOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := photon.WritePNGFile("harpsichord.png", img); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote harpsichord.png (note the mirrored music shelf and soft skylight shadows)")
}
