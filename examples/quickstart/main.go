// Quickstart: simulate a small room, save the answer, reload it, and render
// a PNG — the complete Photon pipeline in one page of code.
package main

import (
	"flag"
	"fmt"
	"log"

	photon "repro"
)

func main() {
	log.SetFlags(0)

	// Explicit fixed seed: the run is deterministic, so the answer file
	// and image are reproducible bit-for-bit (the smoke test relies on
	// this, and on -photons to stay fast).
	var (
		photons = flag.Int64("photons", 300000, "photons to emit")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	// 1. Build a scene (a small white room with one ceiling light).
	scene, err := photon.SceneByName("quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Simulate: emit photons, trace them to absorption, accumulate the
	//    view-independent radiance database. The progress callback streams
	//    completion while the engine runs.
	lastPct := int64(-1)
	sol, err := photon.SimulateProgress(scene, photon.Config{
		Photons: *photons,
		Seed:    *seed,
		Engine:  photon.EngineShared,
		Workers: 4,
	}, func(done, total int64) {
		if pct := done * 100 / total; pct >= lastPct+10 {
			lastPct = pct
			fmt.Printf("  traced %3d%% (%d/%d photons)\n", pct, done, total)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sol.Stats()
	fmt.Printf("simulated %d photons, %d reflections, %d adaptive bin splits\n",
		st.PhotonsEmitted, st.Reflections, st.BinSplits)

	// 3. Persist the answer. Viewing is a separate stage: "It is much like
	//    turning on the lights in a room and then walking in."
	if err := sol.SaveFile("quickstart.pbf"); err != nil {
		log.Fatal(err)
	}

	// 4. Reload and render from an arbitrary viewpoint.
	loaded, err := photon.LoadFile("quickstart.pbf")
	if err != nil {
		log.Fatal(err)
	}
	scene2, err := loaded.Scene()
	if err != nil {
		log.Fatal(err)
	}
	//    The tile renderer is parallel like the simulation: 4 workers and
	//    2×2 supersampling, with an image that is bit-identical at any
	//    worker count (per-pixel deterministic jitter substreams).
	img, err := photon.RenderOpts(scene2, loaded, photon.Camera{
		Eye:    photon.V(2, 0.3, 1.5),
		LookAt: photon.V(2, 4, 1.2),
		Up:     photon.V(0, 0, 1),
		FovY:   70, Width: 320, Height: 240,
	}, photon.RenderOptions{Workers: 4, Samples: 2, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	if err := photon.WritePNGFile("quickstart.png", img); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.pbf and quickstart.png")
}
