// Cornell Box: the paper's mirror demonstration (Figures 4.8 and 4.10).
// One simulation of the box with its floating mirror; four different
// viewpoints rendered from the same answer file with zero recomputation —
// including views in which the mirror is seen from different angles, which
// a radiosity answer cannot do and a ray tracer must recompute.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	photon "repro"
)

func main() {
	log.SetFlags(0)
	photons := flag.Int64("photons", 800000, "photons to emit")
	flag.Parse()

	scene, err := photon.SceneByName("cornell-box")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cornell Box: %d defining polygons (mirror floats in the centre)\n",
		scene.DefiningPolygons())

	simStart := time.Now()
	sol, err := photon.Simulate(scene, photon.Config{
		Photons: *photons,
		Seed:    1, // explicit: the four views below are reproducible
		Engine:  photon.EngineShared,
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: %v (%d view-dependent bins)\n",
		time.Since(simStart).Round(time.Millisecond), sol.Leaves())

	views := []struct {
		name string
		cam  photon.Camera
	}{
		{"front", photon.Camera{
			Eye: photon.V(2.75, 0.4, 2.75), LookAt: photon.V(2.75, 5, 2.75)}},
		{"high", photon.Camera{
			Eye: photon.V(0.6, 0.6, 4.8), LookAt: photon.V(4, 4, 1)}},
		{"side", photon.Camera{
			Eye: photon.V(4.9, 0.6, 1.2), LookAt: photon.V(1, 5, 2.5)}},
		{"mirror", photon.Camera{
			Eye: photon.V(2.75, 1.2, 0.8), LookAt: photon.V(2.4, 3.2, 2.3)}},
	}
	for _, v := range views {
		v.cam.Up = photon.V(0, 0, 1)
		v.cam.FovY = 65
		v.cam.Width, v.cam.Height = 320, 240
		t0 := time.Now()
		img, err := photon.RenderOpts(scene, sol, v.cam,
			photon.RenderOptions{Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("cornell-%s.png", v.name)
		if err := photon.WritePNGFile(name, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s rendered in %v (no recomputation)\n",
			name, time.Since(t0).Round(time.Millisecond))
	}
}
