package photon

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment (the same rows /
// series the paper reports) and publishes the key shape metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the entire
// evaluation chapter. cmd/photon-bench prints the full text form.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/scenes"
	"repro/internal/server"
	"repro/internal/shared"
	"repro/internal/vecmath"
)

// runExperiment executes fn once per benchmark iteration and reports the
// chosen metrics from the final run.
func runExperiment(b *testing.B, metrics []string, fn func() (*experiments.Result, error)) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, m := range metrics {
		if v, ok := last.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkTable51_GeometrySizes(b *testing.B) {
	runExperiment(b, []string{"leaves-Cornell", "leaves-Harpsichord", "leaves-Computer"},
		func() (*experiments.Result, error) { return experiments.Table51(120000) })
}

func BenchmarkTable52_LoadBalance(b *testing.B) {
	runExperiment(b, []string{"naive-maxmin", "packed-maxmin"},
		func() (*experiments.Result, error) { return experiments.Table52(80000) })
}

func BenchmarkTable53_BatchSizes(b *testing.B) {
	runExperiment(b, []string{"onyx-final", "sp2-final", "indy-final"}, experiments.Table53)
}

func BenchmarkFig43_PhotonGenKernels(b *testing.B) {
	runExperiment(b, []string{"speedup", "flop-ratio"},
		func() (*experiments.Result, error) { return experiments.Fig43Kernels(1_000_000) })
}

func BenchmarkFig54_MemoryGrowth(b *testing.B) {
	runExperiment(b, []string{"final-mb", "first-half-growth", "second-half-growth"},
		func() (*experiments.Result, error) { return experiments.Fig54Memory(300000) })
}

func BenchmarkFig56to58_SharedMemorySpeedup(b *testing.B) {
	runExperiment(b, []string{
		"cornell-box-speedup-8", "harpsichord-room-speedup-8", "computer-lab-speedup-8",
	}, func() (*experiments.Result, error) { return experiments.Fig56to58Shared(300), nil })
}

func BenchmarkFig59to511_IndyClusterSpeedup(b *testing.B) {
	runExperiment(b, []string{
		"cornell-box-speedup-8", "harpsichord-room-speedup-2", "computer-lab-speedup-8",
	}, func() (*experiments.Result, error) { return experiments.Fig59to511Indy(300), nil })
}

func BenchmarkFig512to514_SP2Speedup(b *testing.B) {
	runExperiment(b, []string{
		"cornell-box-speedup-2", "cornell-box-speedup-4", "cornell-box-speedup-64",
		"computer-lab-speedup-64",
	}, func() (*experiments.Result, error) { return experiments.Fig512to514SP2(300), nil })
}

func BenchmarkFig515_GraphOfGraphs(b *testing.B) {
	runExperiment(b, nil,
		func() (*experiments.Result, error) { return experiments.Fig515GraphOfGraphs(300), nil })
}

func BenchmarkFig516_VisualSpeedup(b *testing.B) {
	runExperiment(b, []string{"photons-1", "photons-8", "rmse-1", "rmse-8"},
		func() (*experiments.Result, error) { return experiments.Fig516Visual(60) })
}

func BenchmarkFig24_SphericalHarmonicRinging(b *testing.B) {
	runExperiment(b, []string{"undershoot", "peak"},
		func() (*experiments.Result, error) { return experiments.Fig24SphHarm(), nil })
}

func BenchmarkFig410_ViewpointReuse(b *testing.B) {
	runExperiment(b, []string{"sim-ms"},
		func() (*experiments.Result, error) { return experiments.Fig410Viewpoints(120000) })
}

func BenchmarkDensityEstimationBaseline(b *testing.B) {
	runExperiment(b, []string{"trace-speedup", "mesh-speedup", "storage-ratio"},
		func() (*experiments.Result, error) { return experiments.DensityComparison(60000) })
}

func BenchmarkRadiosityBaseline(b *testing.B) {
	runExperiment(b, []string{"jacobi-iters", "gs-iters", "hr-tight"},
		func() (*experiments.Result, error) { return experiments.RadiosityBaseline() })
}

// BenchmarkGeoDistribution is the chapter-6 ablation: replicated-geometry
// tally forwarding versus geometry-distributed photon-flight forwarding.
func BenchmarkGeoDistribution(b *testing.B) {
	runExperiment(b, []string{"geo-forwards", "repl-bytes", "geo-bytes"},
		func() (*experiments.Result, error) { return experiments.GeoDistribution(40000) })
}

// --- Engine throughput benchmarks (real wall-clock, this host) ---

func benchEngine(b *testing.B, sceneName string, engine Engine, workers int) {
	b.Helper()
	sc, err := SceneByName(sceneName)
	if err != nil {
		b.Fatal(err)
	}
	const photonsPerIter = 20000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(sc, Config{
			Photons: photonsPerIter, Engine: engine, Workers: workers, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(photonsPerIter)*float64(b.N)/b.Elapsed().Seconds(), "photons/s")
}

func BenchmarkEngineSerialCornell(b *testing.B) { benchEngine(b, "cornell-box", EngineSerial, 1) }
func BenchmarkEngineSharedCornell(b *testing.B) { benchEngine(b, "cornell-box", EngineShared, 4) }
func BenchmarkEngineDistCornell(b *testing.B)   { benchEngine(b, "cornell-box", EngineDistributed, 4) }
func BenchmarkEngineSerialLab(b *testing.B)     { benchEngine(b, "computer-lab", EngineSerial, 1) }

// --- Intersection hot-path benchmarks (flattened octree, PR 4) ---

// benchScenes are the bundled scenes the perf trajectory tracks — the one
// definition shared with photon-bench -json, so BENCH_*.json and
// `go test -bench` numbers are directly comparable.
var benchScenes = benchutil.Scenes

// BenchmarkIntersectMrays measures raw octree throughput per bundled scene:
// a fixed set of rays from interior points in uniform directions, closest
// hit per ray, single thread. Mrays/s is the paper's
// "DetermineIntersection" cost made directly readable.
func BenchmarkIntersectMrays(b *testing.B) {
	for _, name := range benchScenes {
		b.Run(name, func(b *testing.B) {
			sc, err := SceneByName(name)
			if err != nil {
				b.Fatal(err)
			}
			rays := benchRays(sc, 1024)
			var h geom.Hit
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Geom.Intersect(rays[i&1023], &h)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrays/s")
		})
	}
}

// BenchmarkTracePhotons measures single-thread end-to-end photon tracing
// per bundled scene through core.Run — emission, octree traversal,
// scattering and forest tallies, nothing parallel — so the photons/s column
// isolates the per-photon cost the flattened hot path optimizes.
func BenchmarkTracePhotons(b *testing.B) {
	for _, name := range benchScenes {
		b.Run(name, func(b *testing.B) {
			sc, err := SceneByName(name)
			if err != nil {
				b.Fatal(err)
			}
			const photonsPerIter = 20000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(photonsPerIter)
				cfg.Seed = int64(i + 1)
				if _, err := core.Run(sc, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(photonsPerIter)*float64(b.N)/b.Elapsed().Seconds(), "photons/s")
		})
	}
}

// BenchmarkTraceWavefront is BenchmarkTracePhotons on the batched
// wavefront path: same scenes, same photon counts, one thread — the
// difference between the two photons/s metrics is the pure batching gain
// the trajectory's wavefront-speedup rows track.
func BenchmarkTraceWavefront(b *testing.B) {
	for _, name := range benchScenes {
		b.Run(name, func(b *testing.B) {
			sc, err := SceneByName(name)
			if err != nil {
				b.Fatal(err)
			}
			const photonsPerIter = 20000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(photonsPerIter)
				cfg.Seed = int64(i + 1)
				if _, err := core.RunWavefront(sc, cfg, core.DefaultWaveSize); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(photonsPerIter)*float64(b.N)/b.Elapsed().Seconds(), "photons/s")
		})
	}
}

// BenchmarkParallelScaling is the workers 1→2→4→8 sweep of the shared
// wavefront engine — the benchmark form of photon-bench's
// parallel-scaling suite, on the same cornell-box workload.
func BenchmarkParallelScaling(b *testing.B) {
	sc, err := SceneByName("cornell-box")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range benchutil.ScalingWorkers {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			const photonsPerIter = 20000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := shared.DefaultConfig(photonsPerIter)
				cfg.Core.Seed = int64(i + 1)
				cfg.Workers = workers
				if _, err := shared.Run(sc, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(photonsPerIter)*float64(b.N)/b.Elapsed().Seconds(), "photons/s")
		})
	}
}

// benchRays is the shared deterministic ray set (see internal/benchutil).
func benchRays(sc *Scene, n int) []vecmath.Ray {
	return benchutil.Rays(sc.Geom, n)
}

// --- Ablation benches for DESIGN.md's design choices ---

// BenchmarkAblationBatchSize quantifies the communication-amortization
// trade the adaptive controller navigates: throughput of the distributed
// engine at fixed small vs paper-equilibrium batch sizes.
func BenchmarkAblationBatchSize(b *testing.B) {
	sc, err := scenes.Quickstart()
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{50, 500, 1500} {
		b.Run(sizeName(batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := dist.DefaultConfig(20000, 4)
				cfg.BatchSize = batch
				if _, err := dist.Run(sc, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n < 100:
		return "batch-small"
	case n < 1000:
		return "batch-paper-initial"
	default:
		return "batch-paper-equilibrium"
	}
}

// BenchmarkSharedContention is the hot-path guard for the buffered shared
// engine: the seed's locked path (every tally behind the owning tree's
// write lock, static leapfrog partitioning) against the buffered path
// (private per-worker buffers, work-stealing chunks, in-order merge) at
// 1, 4 and 8 workers on the Cornell Box. The buffered path must win where
// the paper predicts lock contention dominates; photons/sec per
// sub-benchmark makes the ratio directly readable. Numbers are recorded in
// DESIGN.md.
func BenchmarkSharedContention(b *testing.B) {
	sc, err := SceneByName("cornell-box")
	if err != nil {
		b.Fatal(err)
	}
	const photonsPerIter = 20000
	paths := []struct {
		name string
		run  func(*scenes.Scene, shared.Config) (*core.Result, error)
	}{
		{"locked", shared.RunLocked},
		{"buffered", shared.Run},
	}
	for _, p := range paths {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s-w%d", p.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := p.run(sc, shared.Config{
						Core: core.DefaultConfig(photonsPerIter), Workers: workers,
					}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(photonsPerIter)*float64(b.N)/b.Elapsed().Seconds(), "photons/s")
			})
		}
	}
}

// --- View-stage (tile renderer + server) benchmarks ---

// BenchmarkRenderWorkers measures the tile-parallel viewer at 1/4/8
// workers over one answer: the stage-two counterpart of
// BenchmarkSharedContention. The image is bit-identical at every worker
// count (pinned by TestRenderWorkerConformance), so the comparison is
// purely throughput; pixels/s makes the scaling directly readable.
func BenchmarkRenderWorkers(b *testing.B) {
	sc, err := SceneByName("quickstart")
	if err != nil {
		b.Fatal(err)
	}
	sol, err := Simulate(sc, Config{Photons: 50000})
	if err != nil {
		b.Fatal(err)
	}
	cam := Camera{
		Eye: V(2, 0.3, 1.5), LookAt: V(2, 4, 1.2), Up: V(0, 0, 1),
		FovY: 70, Width: 320, Height: 240,
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RenderOpts(sc, sol, cam, RenderOptions{
					Exposure: 2, Workers: workers, Samples: 2,
				}); err != nil {
					b.Fatal(err)
				}
			}
			pixels := float64(cam.Width*cam.Height) * float64(b.N)
			b.ReportMetric(pixels/b.Elapsed().Seconds(), "pixels/s")
		})
	}
}

// BenchmarkServeThroughput measures photon-serve end to end: concurrent
// HTTP clients rendering viewpoints from one LRU-cached answer file. The
// first request pays the load; every subsequent render is pure reads over
// the resident forest, so throughput is the tile renderer plus PNG
// encoding plus HTTP, with zero lock traffic between requests.
func BenchmarkServeThroughput(b *testing.B) {
	dir := b.TempDir()
	sc, err := SceneByName("quickstart")
	if err != nil {
		b.Fatal(err)
	}
	sol, err := Simulate(sc, Config{Photons: 30000})
	if err != nil {
		b.Fatal(err)
	}
	if err := sol.SaveFile(filepath.Join(dir, "bench.pbf")); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{AnswerDir: dir, RenderWorkers: 1}))
	defer ts.Close()
	url := ts.URL + "/render?answer=bench.pbf&w=160&h=120"

	// Warm the cache outside the timed region.
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup status %d", resp.StatusCode)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkAblationLockStriping measures the shared engine with 1 worker
// (lock overhead only) against the lock-free serial engine: the price of
// the multiple-reader / single-writer protocol.
func BenchmarkAblationLockStriping(b *testing.B) {
	sc, err := scenes.Quickstart()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial-no-locks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(sc, core.DefaultConfig(20000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared-1worker-locked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := shared.RunLocked(sc, shared.Config{Core: core.DefaultConfig(20000), Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared-1worker-buffered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := shared.Run(sc, shared.Config{Core: core.DefaultConfig(20000), Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
