// Package photon is the public API of the Photon parallel hierarchical
// global illumination system — a Go reproduction of Snell & Gustafson,
// "Parallel Hierarchical Global Illumination" (HPDC 1997; Iowa State Ph.D.
// dissertation, 1997).
//
// Photon solves the Rendering Equation by Monte Carlo simulation of light
// transport: photons are emitted from luminaires, traced through a
// polygonal scene, and every reflection is tallied into adaptive
// four-dimensional histogram bins (surface position s,t × reflection
// direction r²,θ). The resulting bin forest is a view-independent radiance
// database: render any viewpoint afterwards with a single-bounce ray trace,
// no recomputation.
//
// Four engines share the same physics behind one internal Engine interface:
//
//   - EngineSerial: the reference single-threaded tracer.
//   - EngineShared: work-stealing goroutine workers tallying into private
//     buffers, merged in order into the shared forest (a contention-free
//     evolution of the paper's locked shared-memory algorithm).
//   - EngineDistributed: rank-per-goroutine message passing with a
//     partitioned forest, Best-Fit load balancing and batched all-to-all
//     tally exchange (the paper's MPI algorithm).
//   - EngineGeo: geometry-distributed space ownership with photon-flight
//     forwarding (the dissertation's chapter-6 design).
//
// Serial, shared and distributed are conformant: with the same Config they
// produce bit-identical statistics and bit-identical bin forests at any
// worker or rank count, because every photon draws from a private
// per-photon random substream and every engine applies each bin tree's
// tallies in photon-index order.
//
// Quick start:
//
//	scene, _ := photon.SceneByName("cornell-box")
//	sol, _ := photon.Simulate(scene, photon.Config{Photons: 1e6})
//	img, _ := photon.Render(scene, sol, photon.Camera{...})
package photon

import (
	"fmt"
	"image"
	"io"
	"os"

	"repro/internal/answer"
	"repro/internal/bintree"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/scenegen"
	"repro/internal/scenes"
	"repro/internal/vecmath"
	"repro/internal/view"
)

// Vec3 is a 3-component vector (points, directions, RGB).
type Vec3 = vecmath.Vec3

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return vecmath.V(x, y, z) }

// Scene is a simulation-ready environment: geometry plus materials.
type Scene = scenes.Scene

// Camera is the pinhole camera used for rendering answers.
type Camera = view.Camera

// RenderOptions tunes tone mapping (Exposure, Gamma) and the tile
// renderer (Workers goroutines, Samples² jittered rays per pixel seeded by
// Seed). Rendering is bit-identical at any Workers count; see view.Render.
type RenderOptions = view.Options

// Engine selects a parallelization strategy. Every engine implements the
// same internal engine.Engine interface; serial, shared and distributed
// are conformant — identical statistics and bit-identical forests for the
// same Config — while geo trades forest-layout identity for scalability.
type Engine int

// Available engines.
const (
	EngineSerial Engine = iota
	EngineShared
	EngineDistributed
	// EngineGeo is the geometry-distributed chapter-6 engine: space is
	// partitioned into octree root regions and photon flights migrate
	// between region owners instead of tallies between forest owners.
	EngineGeo
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineSerial:
		return "serial"
	case EngineShared:
		return "shared"
	case EngineDistributed:
		return "distributed"
	case EngineGeo:
		return "geo"
	}
	return "unknown"
}

// impl resolves the public selector to the internal engine implementation.
func (e Engine) impl() (engine.Engine, error) {
	switch e {
	case EngineSerial:
		return engine.Serial, nil
	case EngineShared:
		return engine.Shared, nil
	case EngineDistributed:
		return engine.Distributed, nil
	case EngineGeo:
		return engine.Geo, nil
	}
	return nil, fmt.Errorf("photon: unknown engine %v", e)
}

// Balance selects the distributed engine's forest-ownership strategy
// (section 5, "Load Balancing").
type Balance = dist.Balance

// Available strategies. BalanceBinPack (greedy Best-Fit seeded by the
// pre-phase photon counts) is the paper's choice and the zero-value
// default; BalanceNaive is the contiguous-blocks strawman Table 5.2
// quantifies against it.
const (
	BalanceBinPack = dist.BalanceBinPack
	BalanceNaive   = dist.BalanceNaive
)

// Config parameterizes a simulation.
type Config struct {
	// Photons is the number of photons to emit (required).
	Photons int64
	// Seed selects the deterministic random stream (default 1).
	Seed int64
	// Engine selects serial, shared-memory or distributed execution.
	Engine Engine
	// Workers is the goroutine count for EngineShared and the rank count
	// for EngineDistributed (default 4 for both).
	Workers int
	// BatchSize is the photons per batch: for EngineShared the wavefront
	// width — photons traced through the octree together as one ray
	// packet (default 64); for EngineDistributed the photons per rank
	// between all-to-all exchanges (default 500, the paper's starting
	// size). Results are bit-identical at every batch size; only
	// throughput changes.
	BatchSize int
	// Balance selects the forest-ownership load balancing strategy
	// (EngineDistributed only; default BalanceBinPack).
	Balance Balance
	// SplitSigma overrides the 3σ bin-split criterion (0 = default 3).
	SplitSigma float64
	// Sections is the per-axis (s,t) section count per defining polygon
	// (Sections² trees per polygon). 0 keeps each engine's default: one
	// tree per polygon for serial and shared, 4×4 sections for
	// distributed. Serial, shared and distributed runs at the same
	// explicit Sections produce bit-identical forests; EngineGeo owns
	// whole polygons and rejects Sections > 1.
	Sections int
}

// Progress is a streaming completion callback: photons fully finished so
// far, out of total. Calls are monotone in done and end at done == total.
type Progress = engine.ProgressFunc

// Stats are the simulation counters.
type Stats = core.Stats

// Solution is a completed, viewable, durable global-illumination answer.
type Solution struct {
	inner *answer.Solution
	stats Stats
}

// Stats returns the simulation counters. For a Solution loaded from an
// answer file they are recovered from the file rather than carried through
// it: PhotonsEmitted is stored; Reflections and BinSplits are exact
// reconstructions from the forest (every tally beyond the one-per-photon
// emission is a reflection; every split added exactly one leaf). The
// trajectory counters that leave no trace in the answer — Absorptions,
// Escapes and TotalPathLength — do not survive a save/load round-trip and
// read zero.
func (s *Solution) Stats() Stats { return s.stats }

// Summary is the compact ==-comparable digest of a solution's radiance
// database; see the answer package.
type Summary = answer.Summary

// Summary digests the solution: equal summaries mean bit-identical
// forests. This is the conformance matrix's equality.
func (s *Solution) Summary() Summary { return s.inner.Summarize() }

// SceneName returns the scene the solution was computed for.
func (s *Solution) SceneName() string { return s.inner.SceneName }

// EmittedPhotons returns the emission count.
func (s *Solution) EmittedPhotons() int64 { return s.inner.EmittedPhotons }

// Leaves returns the number of view-dependent bins in the answer.
func (s *Solution) Leaves() int { return s.inner.Forest.TotalLeaves() }

// MemoryBytes estimates the answer's storage footprint.
func (s *Solution) MemoryBytes() int64 { return s.inner.Forest.MemoryBytes() }

// Save writes the solution to w in the answer-file format.
func (s *Solution) Save(w io.Writer) error { return s.inner.Save(w) }

// SaveFile writes the solution to path.
func (s *Solution) SaveFile(path string) error { return s.inner.SaveFile(path) }

// SolutionFromResult wraps an engine-level result (from the internal core,
// shared or dist packages) in the public Solution type. In-module tools and
// examples that drive the engines directly use it to reach the viewer.
func SolutionFromResult(res *core.Result) *Solution {
	return &Solution{inner: answer.FromResult(res), stats: res.Stats}
}

// recoveredStats rebuilds the counters an answer file determines; see
// Solution.Stats for which counters are recoverable and why.
func recoveredStats(inner *answer.Solution) Stats {
	return Stats{
		PhotonsEmitted: inner.EmittedPhotons,
		Reflections:    inner.Forest.TotalPhotons() - inner.EmittedPhotons,
		BinSplits:      int64(inner.Forest.TotalLeaves() - inner.Forest.NumTrees()),
	}
}

// Load reads a solution written by Save, recovering the reconstructible
// simulation counters (see Stats).
func Load(r io.Reader) (*Solution, error) {
	inner, err := answer.Load(r)
	if err != nil {
		return nil, err
	}
	return &Solution{inner: inner, stats: recoveredStats(inner)}, nil
}

// LoadFile reads a solution from path.
func LoadFile(path string) (*Solution, error) {
	inner, err := answer.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Solution{inner: inner, stats: recoveredStats(inner)}, nil
}

// Scene rebuilds the geometry a loaded solution was computed for.
func (s *Solution) Scene() (*Scene, error) { return s.inner.Scene() }

// SceneByName constructs one of the built-in scenes — "quickstart",
// "cornell-box", "harpsichord-room", "computer-lab" — or a procedurally
// generated scene from a spec string like
// "gen:office/seed=42/rooms=2/density=0.7" (see GenFamilies). Generated
// scenes are deterministic: the same spec always builds the identical
// geometry, and serial, shared and distributed simulations of it produce
// bit-identical answers just like the built-ins.
func SceneByName(name string) (*Scene, error) {
	ctor, err := scenes.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("photon: %w", err)
	}
	return ctor()
}

// SceneNames lists the built-in scene names.
func SceneNames() []string { return scenes.Names() }

// GenFamilies lists the procedural scene-generator family names usable in
// "gen:<family>/seed=N/param=value/..." specs accepted by SceneByName.
func GenFamilies() []string { return scenegen.Families() }

// Simulate runs the global illumination simulation and returns the answer.
// It is a thin shim over SimulateProgress without a callback.
func Simulate(scene *Scene, cfg Config) (*Solution, error) {
	return SimulateProgress(scene, cfg, nil)
}

// SimulateProgress is Simulate with streaming completion callbacks:
// progress (which may be nil) receives the photons finished so far and the
// total while the chosen engine runs.
func SimulateProgress(scene *Scene, cfg Config, progress Progress) (*Solution, error) {
	if cfg.Photons <= 0 {
		return nil, fmt.Errorf("photon: Config.Photons must be positive")
	}
	eng, err := cfg.Engine.impl()
	if err != nil {
		return nil, err
	}
	coreCfg := core.DefaultConfig(cfg.Photons)
	if cfg.Seed != 0 {
		coreCfg.Seed = cfg.Seed
	}
	if cfg.SplitSigma > 0 {
		coreCfg.Bin.SplitSigma = cfg.SplitSigma
	}
	if cfg.Sections > 0 {
		coreCfg.Sections = cfg.Sections
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	sol, err := eng.Run(scene, engine.Config{
		Core:      coreCfg,
		Workers:   workers,
		BatchSize: cfg.BatchSize,
		Balance:   cfg.Balance,
		Progress:  progress,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{inner: answer.FromResult(sol.Result), stats: sol.Stats}, nil
}

// Render produces the image seen by cam from the solution. The scene must
// be the one the solution was computed for (use Solution.Scene after
// loading from disk).
func Render(scene *Scene, sol *Solution, cam Camera) (*image.RGBA, error) {
	return RenderOpts(scene, sol, cam, RenderOptions{})
}

// RenderOpts is Render with explicit tone-mapping options.
func RenderOpts(scene *Scene, sol *Solution, cam Camera, opts RenderOptions) (*image.RGBA, error) {
	return view.Render(scene, sol.inner.Forest, cam, opts)
}

// WritePNG encodes an image as PNG.
func WritePNG(w io.Writer, img image.Image) error { return view.WritePNG(w, img) }

// WritePNGFile encodes an image as PNG to path, surfacing the Close error
// too — on many filesystems that is where a failed write actually reports.
func WritePNGFile(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := view.WritePNG(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Radiance queries the solution directly: the outgoing radiance of
// defining polygon patch at bilinear position (s,t) in direction (r²,θ) of
// the paper's cylindrical parameterization.
func (s *Solution) Radiance(scene *Scene, patch int, sParam, tParam, r2, theta float64) (Vec3, error) {
	if patch < 0 || patch >= len(scene.Geom.Patches) {
		return Vec3{}, fmt.Errorf("photon: patch %d out of range", patch)
	}
	rgb := s.inner.Forest.Radiance(patch,
		bintree.Point{S: sParam, T: tParam, R2: r2, Theta: theta},
		scene.Geom.Patches[patch].Area())
	return V(rgb.R, rgb.G, rgb.B), nil
}
