package photon

// The batch-size axis of the conformance matrix. PR 9 rebuilt the shared
// engine's trace loop as a batched wavefront (core.Wave over the octree's
// packet traversal), and the contract is that batching is invisible in the
// answer: for every bundled scene, every batch width and every worker
// count, stats and bin forests are bit-identical to the serial engine's.
// This is the acceptance bar that lets the batch width be a pure tuning
// knob — see DESIGN.md "Wavefront batching" for why identity survives.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// wavefrontBatchSizes spans the degenerate width (1: every packet is a
// single ray, reducing the wavefront to the per-photon path), partial
// final batches (16, 64 against non-multiple photon counts) and a width
// larger than the work-stealing chunk interplay usually sees (256).
func wavefrontBatchSizes(t *testing.T) []int {
	t.Helper()
	if testing.Short() {
		return []int{1, 64}
	}
	return []int{1, 16, 64, 256}
}

// TestWavefrontBatchConformance is the batch × workers matrix: shared
// engine at batch {1,16,64,256} × workers {1,2,8} versus the serial
// reference, per scene. Identical Summary (which embeds the forest
// fingerprint) and identical Stats required — bit-identity, not closeness.
func TestWavefrontBatchConformance(t *testing.T) {
	photons := int64(6000)
	if testing.Short() {
		photons = 2000
	}
	for _, sceneName := range SceneNames() {
		sc, err := SceneByName(sceneName)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(sceneName, func(t *testing.T) {
			refSum, refStats := runSummary(t, sc, Config{
				Photons: photons, Engine: EngineSerial, Sections: 1})
			for _, batch := range wavefrontBatchSizes(t) {
				for _, workers := range []int{1, 2, 8} {
					t.Run(fmt.Sprintf("batch%d-w%d", batch, workers), func(t *testing.T) {
						sum, stats := runSummary(t, sc, Config{
							Photons: photons, Engine: EngineShared,
							Workers: workers, BatchSize: batch, Sections: 1})
						if stats != refStats {
							t.Errorf("stats diverge from serial:\nbatched: %+v\nserial:  %+v",
								stats, refStats)
						}
						if sum != refSum {
							t.Errorf("summary diverges from serial:\nbatched: %+v\nserial:  %+v",
								sum, refSum)
						}
					})
				}
			}
		})
	}
}

// TestWavefrontBatchChunkInteraction pins the awkward geometries the
// matrix's round numbers can miss: batch widths that do not divide the
// chunk size, chunks smaller than one batch, and photon counts leaving
// ragged final chunks AND ragged final batches simultaneously.
func TestWavefrontBatchChunkInteraction(t *testing.T) {
	sc, err := SceneByName(SceneNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	coreCfg := core.DefaultConfig(3001) // prime-ish: ragged under every divisor below
	ref, err := engine.Serial.Run(sc, engine.Config{Core: coreCfg})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		chunk int64
		batch int
	}{
		{chunk: 100, batch: 64},  // batch straddles chunk boundary
		{chunk: 33, batch: 256},  // chunk smaller than one batch
		{chunk: 512, batch: 100}, // non-power-of-two width
		{chunk: 1, batch: 64},    // every chunk is a single photon
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("chunk%d-batch%d", c.chunk, c.batch), func(t *testing.T) {
			sol, err := engine.Shared.Run(sc, engine.Config{
				Core: coreCfg, Workers: 3, ChunkSize: c.chunk, BatchSize: c.batch})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Stats != ref.Stats {
				t.Errorf("chunk=%d batch=%d: stats diverge from serial:\nbatched: %+v\nserial:  %+v",
					c.chunk, c.batch, sol.Stats, ref.Stats)
			}
			if sol.Forest.Fingerprint() != ref.Forest.Fingerprint() {
				t.Errorf("chunk=%d batch=%d: forest fingerprint %x != serial %x",
					c.chunk, c.batch, sol.Forest.Fingerprint(), ref.Forest.Fingerprint())
			}
		})
	}
}
