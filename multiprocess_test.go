package photon

// Multi-process conformance: the photon-coord / photon-worker binaries —
// real OS processes joined over TCP — must produce bit-identical forests
// and identical statistics to the in-process distributed engine, at any
// rank count, and a killed-and-replaced worker must not change the
// answer. These tests exec the actual binaries, so they pin the whole
// stack: join handshake, mesh build, gob wire format, checkpoint gather,
// and resume.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/scenes"
)

// coordSummary mirrors photon-coord's -json output.
type coordSummary struct {
	Fingerprint string           `json:"fingerprint"`
	Stats       core.Stats       `json:"stats"`
	PerRank     []dist.RankStats `json:"perRank"`
	Forwards    int64            `json:"forwards"`
}

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildWorkerBinaries compiles photon-coord and photon-worker once per
// test process.
func buildWorkerBinaries(t *testing.T) (coordBin, workerBin string) {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "photon-mp-*")
		if buildErr != nil {
			return
		}
		for _, name := range []string{"photon-coord", "photon-worker"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, name), "./cmd/"+name)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("building %s: %v\n%s", name, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "photon-coord"), filepath.Join(buildDir, "photon-worker")
}

// launchJob starts a coordinator plus workers and returns the parsed
// summary. extraWorkerArgs[i] is appended to worker i's command line.
func launchJob(t *testing.T, coordArgs []string, workers int, extraWorkerArgs map[int][]string) (coordSummary, string) {
	t.Helper()
	coordBin, workerBin := buildWorkerBinaries(t)
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	jsonFile := filepath.Join(dir, "result.json")

	args := append([]string{
		"-listen", "127.0.0.1:0", "-addr-file", addrFile,
		"-json", jsonFile, "-o", "",
	}, coordArgs...)
	coordCmd := exec.Command(coordBin, args...)
	var coordLog strings.Builder
	coordCmd.Stdout = &coordLog
	coordCmd.Stderr = &coordLog
	if err := coordCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer coordCmd.Process.Kill()

	addr := waitForFile(t, addrFile)
	var procs []*exec.Cmd
	for i := 0; i < workers; i++ {
		wargs := append([]string{"-coord", addr}, extraWorkerArgs[i]...)
		w := exec.Command(workerBin, wargs...)
		w.Stdout = &nullWriter{}
		w.Stderr = &nullWriter{}
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, w)
		defer w.Process.Kill()
		if len(extraWorkerArgs) > 0 {
			// Stagger joins so worker launch order is join-id order — the
			// coordinator assigns ranks lowest-id first, and the fault
			// injection tests rely on the faulty worker being selected.
			time.Sleep(200 * time.Millisecond)
		}
	}

	if err := coordCmd.Wait(); err != nil {
		t.Fatalf("coordinator failed: %v\n%s", err, coordLog.String())
	}
	for _, w := range procs {
		w.Wait()
	}
	buf, err := os.ReadFile(jsonFile)
	if err != nil {
		t.Fatalf("no result summary: %v\n%s", err, coordLog.String())
	}
	var sum coordSummary
	if err := json.Unmarshal(buf, &sum); err != nil {
		t.Fatal(err)
	}
	return sum, coordLog.String()
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

func waitForFile(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if buf, err := os.ReadFile(path); err == nil && len(buf) > 0 {
			return string(buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("coordinator never wrote its control address")
	return ""
}

// expectJob computes the in-process expectation for a subprocess job.
func expectJob(t *testing.T, engine string, photons int64, ranks, batch int) *dist.Result {
	t.Helper()
	sc, err := scenes.Quickstart()
	if err != nil {
		t.Fatal(err)
	}
	var cfg dist.Config
	if engine == "geo" {
		cfg = dist.DefaultGeoConfig(photons, ranks)
	} else {
		cfg = dist.DefaultConfig(photons, ranks)
	}
	if batch > 0 {
		cfg.BatchSize = batch
	}
	var res *dist.Result
	if engine == "geo" {
		res, err = dist.GeoRun(sc, cfg)
	} else {
		res, err = dist.Run(sc, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertMatches(t *testing.T, sum coordSummary, want *dist.Result, log string) {
	t.Helper()
	if g, w := sum.Fingerprint, fmt.Sprintf("%016x", want.Forest.Fingerprint()); g != w {
		t.Errorf("fingerprint %s, in-process engine gives %s\n%s", g, w, log)
	}
	if sum.Stats != want.Stats {
		t.Errorf("stats %+v, in-process engine gives %+v", sum.Stats, want.Stats)
	}
	if len(sum.PerRank) != len(want.PerRank) {
		t.Fatalf("got %d rank entries, want %d", len(sum.PerRank), len(want.PerRank))
	}
	for r := range want.PerRank {
		if sum.PerRank[r] != want.PerRank[r] {
			t.Errorf("rank %d stats %+v, in-process engine gives %+v", r, sum.PerRank[r], want.PerRank[r])
		}
	}
	if sum.Forwards != want.Forwards {
		t.Errorf("forwards %d, in-process engine gives %d", sum.Forwards, want.Forwards)
	}
}

func TestMultiProcessConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("execs subprocesses")
	}
	const photons = 20000
	for _, ranks := range []int{2, 4} {
		t.Run(fmt.Sprintf("replicated-%dranks", ranks), func(t *testing.T) {
			want := expectJob(t, "replicated", photons, ranks, 0)
			sum, log := launchJob(t, []string{
				"-scene", "quickstart", "-photons", fmt.Sprint(photons),
				"-ranks", fmt.Sprint(ranks), "-checkpoint-every", "0",
			}, ranks-1, nil)
			assertMatches(t, sum, want, log)
			assertCleanTeardown(t, log)
		})
	}
	t.Run("geo-2ranks", func(t *testing.T) {
		want := expectJob(t, "geo", photons, 2, 0)
		sum, log := launchJob(t, []string{
			"-scene", "quickstart", "-photons", fmt.Sprint(photons),
			"-ranks", "2", "-engine", "geo",
		}, 1, nil)
		assertMatches(t, sum, want, log)
		assertCleanTeardown(t, log)
	})
}

// assertCleanTeardown pins the mesh teardown order on a healthy run: no
// worker may report a failed rank. A rank that passes the finalize
// barrier must not close its mesh until the coordinator confirms every
// rank is done — an early FIN races rank 0's barrier broadcast to slower
// peers (different connections, no ordering) and poisons them
// mid-barrier, which surfaced as spurious "world closed during Barrier"
// failures on otherwise-successful jobs.
func assertCleanTeardown(t *testing.T, log string) {
	t.Helper()
	if strings.Contains(log, "failed") {
		t.Errorf("healthy run reported rank failures:\n%s", log)
	}
}

// TestMultiProcessKillResume is the fault-tolerance acceptance test: one
// worker kills itself mid-job at a deterministic round boundary; the
// coordinator detects the death, waits for the replacement (already
// joined), resumes from the last checkpoint, and the final answer is
// bit-identical to an uninterrupted run.
func TestMultiProcessKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("execs subprocesses")
	}
	const photons = 20000
	const ranks = 3
	const batch = 1000
	want := expectJob(t, "replicated", photons, ranks, batch)

	// Worker 0 joins first (lowest id, so attempt 0 selects it) and dies
	// after round 2; workers 1 and 2 are sound, so the retry has a full
	// complement without anyone restarting.
	sum, log := launchJob(t, []string{
		"-scene", "quickstart", "-photons", fmt.Sprint(photons),
		"-ranks", fmt.Sprint(ranks), "-batch", fmt.Sprint(batch),
		"-checkpoint-every", "1", "-heartbeat-timeout", "5s",
	}, ranks, map[int][]string{
		0: {"-fail-after-round", "2"},
	})
	if !strings.Contains(log, "resuming") {
		t.Errorf("coordinator never resumed from a checkpoint:\n%s", log)
	}
	assertMatches(t, sum, want, log)
}
